"""SMT-LIB scripts: commands plus the declaration context they build up.

A :class:`Script` is an immutable sequence of :class:`Command` nodes.  The
command set covers what the fuzzing substrate generates and consumes:
``set-logic``, ``set-option``, ``set-info``, ``declare-sort``,
``declare-fun``, ``declare-const``, ``define-fun``, ``assert``,
``check-sat``, ``get-model``, ``push``/``pop`` and ``exit``.

:class:`DeclarationContext` tracks the sorts and function signatures a
script declares, with a scope stack mirroring ``push``/``pop``.  The parser
uses it to resolve symbol occurrences to sorted :class:`~repro.smtlib.terms.Symbol`
nodes, and the type checker uses it to validate free symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import SortError, UnknownSymbolError
from .sorts import BOOL, Sort
from .terms import Term


# ---------------------------------------------------------------------------
# Function signatures and the declaration context.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunSignature:
    """Rank of a declared or defined function: parameter sorts and result."""

    params: tuple[Sort, ...]
    result: Sort

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))

    @property
    def arity(self) -> int:
        return len(self.params)


class DeclarationContext:
    """Mutable symbol table for sorts and functions with push/pop scopes.

    Each scope level is a pair of dicts (sorts: name → arity, funs: name →
    :class:`FunSignature`).  Lookup walks from the innermost scope outward,
    so ``pop`` discards exactly the declarations made since the matching
    ``push`` — the SMT-LIB assertion-stack semantics.
    """

    def __init__(self) -> None:
        self._sort_scopes: list[dict[str, int]] = [{}]
        self._fun_scopes: list[dict[str, FunSignature]] = [{}]

    # -- scope management ---------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of open scopes (1 when no ``push`` is active)."""
        return len(self._fun_scopes)

    def push(self, levels: int = 1) -> None:
        for _ in range(levels):
            self._sort_scopes.append({})
            self._fun_scopes.append({})

    def pop(self, levels: int = 1) -> None:
        if levels >= self.depth:
            raise SortError(f"cannot pop {levels} scope level(s) at depth {self.depth}")
        for _ in range(levels):
            self._sort_scopes.pop()
            self._fun_scopes.pop()

    def copy(self) -> "DeclarationContext":
        clone = DeclarationContext()
        clone._sort_scopes = [dict(scope) for scope in self._sort_scopes]
        clone._fun_scopes = [dict(scope) for scope in self._fun_scopes]
        return clone

    # -- sorts --------------------------------------------------------------

    def declare_sort(self, name: str, arity: int = 0) -> None:
        if self.sort_arity(name) is not None:
            raise SortError(f"sort {name!r} is already declared")
        self._sort_scopes[-1][name] = int(arity)

    def sort_arity(self, name: str) -> Optional[int]:
        """Arity of a declared sort, or ``None`` when not declared."""
        for scope in reversed(self._sort_scopes):
            if name in scope:
                return scope[name]
        return None

    # -- functions ----------------------------------------------------------

    def declare_fun(self, name: str, params: tuple[Sort, ...], result: Sort) -> None:
        # Like declare_sort, redeclaration is rejected at ANY visible scope
        # level: cvc5 refuses to re-declare an in-scope symbol, and the
        # fuzzing pipeline must not accept scripts the target solver rejects.
        if self.lookup_fun(name) is not None:
            raise SortError(f"function {name!r} is already declared")
        self._fun_scopes[-1][name] = FunSignature(tuple(params), result)

    def declare_const(self, name: str, sort: Sort) -> None:
        self.declare_fun(name, (), sort)

    def lookup_fun(self, name: str) -> Optional[FunSignature]:
        for scope in reversed(self._fun_scopes):
            if name in scope:
                return scope[name]
        return None

    def require_fun(self, name: str) -> FunSignature:
        signature = self.lookup_fun(name)
        if signature is None:
            raise UnknownSymbolError(name)
        return signature

    def declared_funs(self) -> dict[str, FunSignature]:
        """All visible function signatures, innermost declarations winning."""
        merged: dict[str, FunSignature] = {}
        for scope in self._fun_scopes:
            merged.update(scope)
        return merged


# ---------------------------------------------------------------------------
# Commands.
# ---------------------------------------------------------------------------


class Command:
    """Base class of all script commands."""

    def __str__(self) -> str:
        from .printer import command_to_smtlib

        return command_to_smtlib(self)


@dataclass(frozen=True)
class SetLogic(Command):
    """``(set-logic QF_ALL)``"""

    logic: str


@dataclass(frozen=True)
class SetOption(Command):
    """``(set-option :produce-models true)`` — value kept as raw text."""

    keyword: str
    value: str


@dataclass(frozen=True)
class SetInfo(Command):
    """``(set-info :status sat)`` — value kept as raw text."""

    keyword: str
    value: str


@dataclass(frozen=True)
class DeclareSort(Command):
    """``(declare-sort S 0)``"""

    name: str
    arity: int = 0


@dataclass(frozen=True)
class DeclareFun(Command):
    """``(declare-fun f (Int Int) Bool)``"""

    name: str
    params: tuple[Sort, ...]
    result: Sort

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))

    @property
    def signature(self) -> FunSignature:
        return FunSignature(self.params, self.result)


@dataclass(frozen=True)
class DeclareConst(Command):
    """``(declare-const x Int)``"""

    name: str
    sort: Sort


@dataclass(frozen=True)
class DefineFun(Command):
    """``(define-fun f ((x Int)) Int (+ x 1))``"""

    name: str
    params: tuple[tuple[str, Sort], ...]
    result: Sort
    body: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple((n, s) for n, s in self.params))

    @property
    def signature(self) -> FunSignature:
        return FunSignature(tuple(s for _, s in self.params), self.result)


@dataclass(frozen=True)
class Assert(Command):
    """``(assert term)`` or ``(assert (! term :named name))``.

    ``name``, when set, is the assertion's label for unsat cores: SMT-LIB
    treats it as a fresh 0-ary ``Bool`` symbol aliasing the term, and
    ``(get-unsat-core)`` reports a subset of these names."""

    term: Term
    name: Optional[str] = None


@dataclass(frozen=True)
class CheckSat(Command):
    """``(check-sat)``"""


@dataclass(frozen=True)
class GetModel(Command):
    """``(get-model)``"""


@dataclass(frozen=True)
class GetUnsatCore(Command):
    """``(get-unsat-core)``"""


@dataclass(frozen=True)
class GetValue(Command):
    """``(get-value (t1 t2 ...))``"""

    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))


@dataclass(frozen=True)
class Push(Command):
    """``(push n)``"""

    levels: int = 1


@dataclass(frozen=True)
class Pop(Command):
    """``(pop n)``"""

    levels: int = 1


@dataclass(frozen=True)
class Exit(Command):
    """``(exit)``"""


# ---------------------------------------------------------------------------
# Scripts.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Script:
    """An immutable sequence of commands forming one SMT-LIB script."""

    commands: tuple[Command, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "commands", tuple(self.commands))

    def __iter__(self) -> Iterator[Command]:
        return iter(self.commands)

    def __len__(self) -> int:
        return len(self.commands)

    # -- structural queries -------------------------------------------------

    @property
    def logic(self) -> Optional[str]:
        """The logic named by the first ``set-logic`` command, if any."""
        for command in self.commands:
            if isinstance(command, SetLogic):
                return command.logic
        return None

    def assertions(self) -> list[Term]:
        """The asserted terms, in script order."""
        return [command.term for command in self.commands if isinstance(command, Assert)]

    def declaration_context(self) -> DeclarationContext:
        """Replay declarations (including push/pop) into a fresh context."""
        context = DeclarationContext()
        for command in self.commands:
            apply_command(command, context)
        return context

    def with_command(self, command: Command) -> "Script":
        """A new script with ``command`` appended."""
        return Script(self.commands + (command,))

    def map_assertions(self, transform) -> "Script":
        """A new script with every asserted term rewritten by ``transform``.

        ``transform`` receives each :class:`~repro.smtlib.terms.Term` from an
        ``assert`` and must return a ``Bool``-sorted replacement; all other
        commands are kept as-is.  With hash-consed terms, an identity
        transform returns a script whose commands compare equal cheaply.
        """
        commands = tuple(
            Assert(transform(command.term), command.name)
            if isinstance(command, Assert)
            else command
            for command in self.commands
        )
        return Script(commands)

    # -- rendering ----------------------------------------------------------

    def to_smtlib(self) -> str:
        from .printer import script_to_smtlib

        return script_to_smtlib(self)

    def __str__(self) -> str:
        return self.to_smtlib()


def apply_command(command: Command, context: DeclarationContext) -> None:
    """Fold one command's declaration effect into ``context``.

    Non-declaring commands (``assert``, ``check-sat`` ...) are no-ops here;
    the parser calls this after interpreting each command so later commands
    see earlier declarations.
    """
    if isinstance(command, Assert):
        if command.name is not None:
            # A ``:named`` annotation declares its label as a fresh 0-ary
            # Bool symbol (SMT-LIB 2.6 §4.1.5); routing it through
            # ``declare_fun`` gets scoping and freshness checks for free.
            context.declare_fun(command.name, (), BOOL)
    elif isinstance(command, DeclareSort):
        context.declare_sort(command.name, command.arity)
    elif isinstance(command, DeclareFun):
        context.declare_fun(command.name, command.params, command.result)
    elif isinstance(command, DeclareConst):
        context.declare_const(command.name, command.sort)
    elif isinstance(command, DefineFun):
        context.declare_fun(command.name, tuple(s for _, s in command.params), command.result)
    elif isinstance(command, Push):
        context.push(command.levels)
    elif isinstance(command, Pop):
        context.pop(command.levels)


__all__ = [
    "FunSignature",
    "DeclarationContext",
    "Command",
    "SetLogic",
    "SetOption",
    "SetInfo",
    "DeclareSort",
    "DeclareFun",
    "DeclareConst",
    "DefineFun",
    "Assert",
    "CheckSat",
    "GetModel",
    "GetUnsatCore",
    "GetValue",
    "Push",
    "Pop",
    "Exit",
    "Script",
    "apply_command",
]
