"""The SMT-LIB term AST.

Terms are immutable trees.  Five node kinds cover everything the library
needs:

* :class:`Constant` — literals (numerals, decimals, string literals,
  bit-vector literals, finite-field constants, ``true``/``false``) and
  *qualified constants* such as ``(as seq.empty (Seq Int))``.
* :class:`Symbol` — an occurrence of a declared function of arity zero
  (an SMT-LIB "variable") or of a quantified/let-bound variable.
* :class:`Apply` — application of an operator or declared function,
  optionally with numeral indices (``(_ extract 3 0)``, ``(_ divisible 3)``).
* :class:`Quantifier` — ``forall`` / ``exists`` with a list of bindings.
* :class:`Let` — parallel ``let`` bindings.

Every node knows its :class:`~repro.smtlib.sorts.Sort`.  Construction does
not re-check well-sortedness; use :mod:`repro.smtlib.typecheck` for that.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence, Union

from .sorts import BOOL, INT, REAL, STRING, Sort

ConstantValue = Union[bool, int, Fraction, str]


class Term:
    """Base class of all term nodes."""

    sort: Sort

    # -- traversal ----------------------------------------------------------

    def children(self) -> tuple["Term", ...]:
        """Immediate sub-terms of this node."""
        return ()

    def walk(self) -> Iterator["Term"]:
        """Yield this node and every descendant, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Number of nodes in the term tree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the term tree (a leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def free_symbols(self) -> dict[str, Sort]:
        """Free :class:`Symbol` occurrences, name → sort.

        Symbols bound by enclosing quantifiers or ``let`` bindings are not
        reported.
        """
        result: dict[str, Sort] = {}
        _collect_free_symbols(self, frozenset(), result)
        return result

    def operators(self) -> set[str]:
        """The set of operator names applied anywhere inside the term."""
        return {node.op for node in self.walk() if isinstance(node, Apply)}

    # -- convenience --------------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        """True when the term has sort ``Bool``."""
        return self.sort == BOOL

    def __str__(self) -> str:
        from .printer import term_to_smtlib

        return term_to_smtlib(self)


@dataclass(frozen=True)
class Constant(Term):
    """A literal constant, e.g. ``3``, ``1.5``, ``"abc"``, ``#b1010``, ``true``.

    ``qualifier`` holds the symbolic name for qualified constants such as
    ``(as seq.empty (Seq Int))`` (qualifier = ``"seq.empty"``) and finite
    field literals ``(as ff3 (_ FiniteField 5))`` (qualifier = ``"ff3"``);
    it is empty for plain literals.
    """

    value: ConstantValue
    sort: Sort
    qualifier: str = ""

    def __post_init__(self) -> None:
        if self.sort == REAL and isinstance(self.value, int):
            object.__setattr__(self, "value", Fraction(self.value))


@dataclass(frozen=True)
class Symbol(Term):
    """An occurrence of a zero-arity function or a bound variable."""

    name: str
    sort: Sort


@dataclass(frozen=True)
class Apply(Term):
    """Application ``(op arg1 ... argn)``; ``indices`` for ``(_ op i ...)``."""

    op: str
    args: tuple[Term, ...]
    sort: Sort
    indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))

    def children(self) -> tuple[Term, ...]:
        return self.args


@dataclass(frozen=True)
class Quantifier(Term):
    """A ``forall`` or ``exists`` term; ``bindings`` are (name, sort) pairs."""

    kind: str
    bindings: tuple[tuple[str, Sort], ...]
    body: Term

    def __post_init__(self) -> None:
        if self.kind not in ("forall", "exists"):
            raise ValueError(f"unknown quantifier kind: {self.kind}")
        object.__setattr__(self, "bindings", tuple((n, s) for n, s in self.bindings))

    @property
    def sort(self) -> Sort:  # type: ignore[override]
        return BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Let(Term):
    """A parallel ``let`` term; ``bindings`` are (name, term) pairs."""

    bindings: tuple[tuple[str, Term], ...]
    body: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "bindings", tuple((n, t) for n, t in self.bindings))

    @property
    def sort(self) -> Sort:  # type: ignore[override]
        return self.body.sort

    def children(self) -> tuple[Term, ...]:
        return tuple(t for _, t in self.bindings) + (self.body,)


# ---------------------------------------------------------------------------
# Free-symbol collection and substitution.
# ---------------------------------------------------------------------------


def _collect_free_symbols(term: Term, bound: frozenset[str], out: dict[str, Sort]) -> None:
    if isinstance(term, Symbol):
        if term.name not in bound:
            out.setdefault(term.name, term.sort)
        return
    if isinstance(term, Quantifier):
        inner = bound | {name for name, _ in term.bindings}
        _collect_free_symbols(term.body, inner, out)
        return
    if isinstance(term, Let):
        for _, value in term.bindings:
            _collect_free_symbols(value, bound, out)
        inner = bound | {name for name, _ in term.bindings}
        _collect_free_symbols(term.body, inner, out)
        return
    for child in term.children():
        _collect_free_symbols(child, bound, out)


def substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Replace free symbols by name according to ``mapping``.

    Bound occurrences (quantifier or ``let`` bindings) shadow the mapping.
    """
    return _substitute(term, dict(mapping))


def _substitute(term: Term, mapping: dict[str, Term]) -> Term:
    if not mapping:
        return term
    if isinstance(term, Constant):
        return term
    if isinstance(term, Symbol):
        return mapping.get(term.name, term)
    if isinstance(term, Apply):
        new_args = tuple(_substitute(arg, mapping) for arg in term.args)
        if new_args == term.args:
            return term
        return Apply(term.op, new_args, term.sort, term.indices)
    if isinstance(term, Quantifier):
        shadowed = {k: v for k, v in mapping.items() if k not in {n for n, _ in term.bindings}}
        new_body = _substitute(term.body, shadowed)
        if new_body is term.body:
            return term
        return Quantifier(term.kind, term.bindings, new_body)
    if isinstance(term, Let):
        new_bindings = tuple((name, _substitute(value, mapping)) for name, value in term.bindings)
        shadowed = {k: v for k, v in mapping.items() if k not in {n for n, _ in term.bindings}}
        new_body = _substitute(term.body, shadowed)
        return Let(new_bindings, new_body)
    raise TypeError(f"unknown term node: {term!r}")


def replace_subterm(term: Term, target: Term, replacement: Term) -> Term:
    """Return ``term`` with the first occurrence of ``target`` (by identity or
    equality) replaced by ``replacement``.

    Structure-sharing: any node whose descendants are all unchanged is
    returned as-is (``is``-identical), so untouched siblings of the replaced
    occurrence never get rebuilt.
    """
    replaced = [False]

    def rewrite(node: Term) -> Term:
        if not replaced[0] and (node is target or node == target):
            replaced[0] = True
            return replacement
        if isinstance(node, Apply):
            new_args = tuple(rewrite(a) for a in node.args)
            if all(new is old for new, old in zip(new_args, node.args)):
                return node
            return Apply(node.op, new_args, node.sort, node.indices)
        if isinstance(node, Quantifier):
            new_body = rewrite(node.body)
            if new_body is node.body:
                return node
            return Quantifier(node.kind, node.bindings, new_body)
        if isinstance(node, Let):
            new_bindings = tuple((n, rewrite(v)) for n, v in node.bindings)
            new_body = rewrite(node.body)
            if new_body is node.body and all(
                new is old for (_, new), (_, old) in zip(new_bindings, node.bindings)
            ):
                return node
            return Let(new_bindings, new_body)
        return node

    return rewrite(term)


# ---------------------------------------------------------------------------
# Small constructors used pervasively in tests and generators.
# ---------------------------------------------------------------------------

TRUE = Constant(True, BOOL)
FALSE = Constant(False, BOOL)


def int_const(value: int) -> Constant:
    """An ``Int`` numeral."""
    return Constant(int(value), INT)


def real_const(value: Union[int, float, Fraction]) -> Constant:
    """A ``Real`` decimal (stored exactly as a :class:`~fractions.Fraction`)."""
    return Constant(Fraction(value).limit_denominator(10**9), REAL)


def string_const(value: str) -> Constant:
    """A ``String`` literal."""
    return Constant(str(value), STRING)


def bool_const(value: bool) -> Constant:
    """``true`` or ``false``."""
    return TRUE if value else FALSE


def bitvec_const(value: int, width: int) -> Constant:
    """A bit-vector literal of the given width (value is reduced mod 2^width)."""
    from .sorts import bitvec_sort

    return Constant(int(value) % (1 << width), bitvec_sort(width))


def ff_const(value: int, order: int) -> Constant:
    """A finite-field literal ``(as ffK (_ FiniteField order))``."""
    from .sorts import finite_field_sort

    reduced = int(value) % order
    return Constant(reduced, finite_field_sort(order), qualifier=f"ff{reduced}")


def qualified_constant(name: str, sort: Sort) -> Constant:
    """A qualified nullary constructor such as ``(as seq.empty (Seq Int))``."""
    return Constant(0, sort, qualifier=name)


def symbols(names: Sequence[str], sort: Sort) -> list[Symbol]:
    """Declare a batch of same-sorted symbols (convenience for tests)."""
    return [Symbol(name, sort) for name in names]


__all__ = [
    "Term",
    "Constant",
    "Symbol",
    "Apply",
    "Quantifier",
    "Let",
    "substitute",
    "replace_subterm",
    "TRUE",
    "FALSE",
    "int_const",
    "real_const",
    "string_const",
    "bool_const",
    "bitvec_const",
    "ff_const",
    "qualified_constant",
    "symbols",
    "ConstantValue",
]
