"""The hash-consed SMT-LIB term core.

Terms are immutable, *interned* DAG nodes: constructing a term that is
structurally equal to one that already exists returns the existing object
(one object per distinct term).  Five node kinds cover everything the
library needs:

* :class:`Constant` — literals (numerals, decimals, string literals,
  bit-vector literals, finite-field constants, ``true``/``false``) and
  *qualified constants* such as ``(as seq.empty (Seq Int))``.
* :class:`Symbol` — an occurrence of a declared function of arity zero
  (an SMT-LIB "variable") or of a quantified/let-bound variable.
* :class:`Apply` — application of an operator or declared function,
  optionally with numeral indices (``(_ extract 3 0)``, ``(_ divisible 3)``).
* :class:`Quantifier` — ``forall`` / ``exists`` with a list of bindings.
* :class:`Let` — parallel ``let`` bindings.

Hash-consing gives three guarantees the rest of the pipeline builds on:

* **O(1) equality** — structural equality coincides with object identity
  (``==`` is ``is``), so comparing two terms never walks their trees.
* **O(1) hashing** — every node stores its structural hash, computed once
  at construction from the (already O(1)) hashes of its children.
* **Cached sort** — every node stores its :class:`~repro.smtlib.sorts.Sort`
  at construction; ``Quantifier`` caches ``Bool`` and ``Let`` caches its
  body's sort, so ``term.sort`` never recomputes anything.

The intern table is a :class:`weakref.WeakValueDictionary`, so terms that
become unreachable are collected normally; :func:`intern_stats` reports
hit/miss counters and the live-node count for the benchmark harness.  The
table is process-global and not synchronised — the library is
single-threaded by design.

Every class constructor *is* the interning constructor (interning happens
in ``__new__``), so the parser, simplifier and tests all share the table
without calling anything special.  Construction does not re-check
well-sortedness; use :mod:`repro.smtlib.typecheck` for that.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Iterator, Mapping, Sequence, Union

from .sorts import BOOL, INT, REAL, STRING, Sort

ConstantValue = Union[bool, int, Fraction, str]


# ---------------------------------------------------------------------------
# The intern table.
# ---------------------------------------------------------------------------

_INTERN_TABLE: "weakref.WeakValueDictionary[tuple, Term]" = weakref.WeakValueDictionary()
_HITS = 0
_MISSES = 0


def intern_stats() -> dict[str, int]:
    """Intern-table counters: ``hits`` (constructions that returned an
    existing node), ``misses`` (constructions that allocated) and ``live``
    (nodes currently reachable)."""
    return {"hits": _HITS, "misses": _MISSES, "live": len(_INTERN_TABLE)}


def reset_intern_stats() -> None:
    """Zero the hit/miss counters (the table itself is left alone)."""
    global _HITS, _MISSES
    _HITS = 0
    _MISSES = 0


class Term:
    """Base class of all term nodes.

    Instances are immutable and interned; see the module docstring.
    Subclasses allocate exclusively through :meth:`Term._intern`.
    """

    __slots__ = ("_sort", "_hash", "__weakref__")

    _sort: Sort
    _hash: int

    @classmethod
    def _intern(cls, key: tuple, sort: Sort, attrs: tuple) -> "Term":
        """Return the canonical node for ``key``, allocating on first use.

        ``attrs`` are (slot-name, value) pairs set on a fresh instance.
        """
        global _HITS, _MISSES
        existing = _INTERN_TABLE.get(key)
        if existing is not None:
            _HITS += 1
            return existing
        _MISSES += 1
        self = object.__new__(cls)
        object.__setattr__(self, "_sort", sort)
        object.__setattr__(self, "_hash", hash(key))
        for name, value in attrs:
            object.__setattr__(self, name, value)
        _INTERN_TABLE[key] = self
        return self

    # -- immutability / identity semantics ----------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"terms are immutable: cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"terms are immutable: cannot delete {name!r}")

    def __hash__(self) -> int:
        return self._hash

    # Equality is inherited object identity: interning makes structural
    # equality and identity coincide, so no __eq__ override is needed.

    def __copy__(self) -> "Term":
        return self

    def __deepcopy__(self, memo: dict) -> "Term":
        return self

    @property
    def sort(self) -> Sort:
        """The term's sort, cached at construction."""
        return self._sort

    # -- traversal ----------------------------------------------------------

    def children(self) -> tuple["Term", ...]:
        """Immediate sub-terms of this node."""
        return ()

    def walk(self) -> Iterator["Term"]:
        """Yield this node and every descendant, pre-order.

        Shared subterms are yielded once per *occurrence* (tree view); use
        :meth:`dag_size` or a visited set for the DAG view.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Number of nodes in the term viewed as a tree (occurrences)."""
        return sum(1 for _ in self.walk())

    def dag_size(self) -> int:
        """Number of *distinct* nodes in the term viewed as a DAG.

        With hash-consing, structurally equal subterms are one object, so
        this counts unique objects — the real memory footprint.
        """
        seen: set[Term] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.children())
        return len(seen)

    def depth(self) -> int:
        """Height of the term tree (a leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def free_symbols(self) -> dict[str, Sort]:
        """Free :class:`Symbol` occurrences, name → sort.

        Symbols bound by enclosing quantifiers or ``let`` bindings are not
        reported.
        """
        result: dict[str, Sort] = {}
        _collect_free_symbols(self, frozenset(), result, set())
        return result

    def operators(self) -> set[str]:
        """The set of operator names applied anywhere inside the term."""
        return {node.op for node in self.walk() if isinstance(node, Apply)}

    # -- convenience --------------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        """True when the term has sort ``Bool``."""
        return self.sort == BOOL

    def __str__(self) -> str:
        from .printer import term_to_smtlib

        return term_to_smtlib(self)


class Constant(Term):
    """A literal constant, e.g. ``3``, ``1.5``, ``"abc"``, ``#b1010``, ``true``.

    ``qualifier`` holds the symbolic name for qualified constants such as
    ``(as seq.empty (Seq Int))`` (qualifier = ``"seq.empty"``) and finite
    field literals ``(as ff3 (_ FiniteField 5))`` (qualifier = ``"ff3"``);
    it is empty for plain literals.
    """

    __slots__ = ("_value", "_qualifier")

    _value: ConstantValue
    _qualifier: str

    def __new__(cls, value: ConstantValue, sort: Sort, qualifier: str = "") -> "Constant":
        if sort == REAL and isinstance(value, int):
            value = Fraction(value)
        key = ("Constant", type(value).__name__, value, sort, qualifier)
        attrs = (("_value", value), ("_qualifier", qualifier))
        return cls._intern(key, sort, attrs)  # type: ignore[return-value]

    @property
    def value(self) -> ConstantValue:
        return self._value

    @property
    def qualifier(self) -> str:
        return self._qualifier

    def __repr__(self) -> str:
        return f"Constant(value={self._value!r}, sort={self._sort!r}, qualifier={self._qualifier!r})"

    def __reduce__(self):
        return (Constant, (self._value, self._sort, self._qualifier))


class Symbol(Term):
    """An occurrence of a zero-arity function or a bound variable."""

    __slots__ = ("_name",)

    _name: str

    def __new__(cls, name: str, sort: Sort) -> "Symbol":
        key = ("Symbol", name, sort)
        return cls._intern(key, sort, (("_name", name),))  # type: ignore[return-value]

    @property
    def name(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return f"Symbol(name={self._name!r}, sort={self._sort!r})"

    def __reduce__(self):
        return (Symbol, (self._name, self._sort))


class Apply(Term):
    """Application ``(op arg1 ... argn)``; ``indices`` for ``(_ op i ...)``."""

    __slots__ = ("_op", "_args", "_indices")

    _op: str
    _args: tuple["Term", ...]
    _indices: tuple[int, ...]

    def __new__(
        cls,
        op: str,
        args: Sequence[Term],
        sort: Sort,
        indices: Sequence[int] = (),
    ) -> "Apply":
        args = tuple(args)
        indices = tuple(int(i) for i in indices)
        key = ("Apply", op, args, sort, indices)
        return cls._intern(  # type: ignore[return-value]
            key, sort, (("_op", op), ("_args", args), ("_indices", indices))
        )

    @property
    def op(self) -> str:
        return self._op

    @property
    def args(self) -> tuple[Term, ...]:
        return self._args

    @property
    def indices(self) -> tuple[int, ...]:
        return self._indices

    def children(self) -> tuple[Term, ...]:
        return self._args

    def __repr__(self) -> str:
        return (
            f"Apply(op={self._op!r}, args={self._args!r}, "
            f"sort={self._sort!r}, indices={self._indices!r})"
        )

    def __reduce__(self):
        return (Apply, (self._op, self._args, self._sort, self._indices))


class Quantifier(Term):
    """A ``forall`` or ``exists`` term; ``bindings`` are (name, sort) pairs.

    The sort is always ``Bool`` and is cached like any other node's.
    """

    __slots__ = ("_kind", "_bindings", "_body")

    _kind: str
    _bindings: tuple[tuple[str, Sort], ...]
    _body: "Term"

    def __new__(
        cls,
        kind: str,
        bindings: Sequence[tuple[str, Sort]],
        body: Term,
    ) -> "Quantifier":
        if kind not in ("forall", "exists"):
            raise ValueError(f"unknown quantifier kind: {kind}")
        bindings = tuple((n, s) for n, s in bindings)
        key = ("Quantifier", kind, bindings, body)
        return cls._intern(  # type: ignore[return-value]
            key, BOOL, (("_kind", kind), ("_bindings", bindings), ("_body", body))
        )

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def bindings(self) -> tuple[tuple[str, Sort], ...]:
        return self._bindings

    @property
    def body(self) -> Term:
        return self._body

    def children(self) -> tuple[Term, ...]:
        return (self._body,)

    def __repr__(self) -> str:
        return f"Quantifier(kind={self._kind!r}, bindings={self._bindings!r}, body={self._body!r})"

    def __reduce__(self):
        return (Quantifier, (self._kind, self._bindings, self._body))


class Let(Term):
    """A parallel ``let`` term; ``bindings`` are (name, term) pairs.

    The sort is the body's sort, cached at construction.
    """

    __slots__ = ("_bindings", "_body")

    _bindings: tuple[tuple[str, "Term"], ...]
    _body: "Term"

    def __new__(cls, bindings: Sequence[tuple[str, Term]], body: Term) -> "Let":
        bindings = tuple((n, t) for n, t in bindings)
        key = ("Let", bindings, body)
        return cls._intern(  # type: ignore[return-value]
            key, body.sort, (("_bindings", bindings), ("_body", body))
        )

    @property
    def bindings(self) -> tuple[tuple[str, Term], ...]:
        return self._bindings

    @property
    def body(self) -> Term:
        return self._body

    def children(self) -> tuple[Term, ...]:
        return tuple(t for _, t in self._bindings) + (self._body,)

    def __repr__(self) -> str:
        return f"Let(bindings={self._bindings!r}, body={self._body!r})"

    def __reduce__(self):
        return (Let, (self._bindings, self._body))


# ---------------------------------------------------------------------------
# Binder-scope bookkeeping shared by the scope-threading passes.
# ---------------------------------------------------------------------------


def push_scope(bound: dict, bindings) -> list:
    """Enter binder ``bindings`` ((name, value) pairs) by mutating ``bound``;
    return the shadowed entries for :func:`pop_scope`.

    Mutate-and-restore keeps deep binder chains linear where copying the
    scope dict per level would be quadratic; the type checker and the
    evaluator both thread their scopes through this pair.
    """
    saved = [(name, bound.get(name)) for name, _ in bindings]
    for name, value in bindings:
        bound[name] = value
    return saved


def pop_scope(bound: dict, saved: list) -> None:
    """Undo a :func:`push_scope`, restoring shadowed entries."""
    for name, old in saved:
        if old is None:
            bound.pop(name, None)
        else:
            bound[name] = old


# ---------------------------------------------------------------------------
# Free-symbol collection and substitution.
# ---------------------------------------------------------------------------


def _collect_free_symbols(
    term: Term, bound: frozenset[str], out: dict[str, Sort], seen: set
) -> None:
    # A (term, bound-set) pair always contributes the same names, so with
    # hash-consed sharing each distinct pair is visited once — keeping the
    # walk linear in DAG size rather than tree size.
    key = (term, bound)
    if key in seen:
        return
    seen.add(key)
    if isinstance(term, Symbol):
        if term.name not in bound:
            out.setdefault(term.name, term.sort)
        return
    if isinstance(term, Quantifier):
        inner = bound | {name for name, _ in term.bindings}
        _collect_free_symbols(term.body, inner, out, seen)
        return
    if isinstance(term, Let):
        for _, value in term.bindings:
            _collect_free_symbols(value, bound, out, seen)
        inner = bound | {name for name, _ in term.bindings}
        _collect_free_symbols(term.body, inner, out, seen)
        return
    for child in term.children():
        _collect_free_symbols(child, bound, out, seen)


def substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Replace free symbols by name according to ``mapping``.

    Bound occurrences (quantifier or ``let`` bindings) shadow the mapping.
    """
    return _substitute(term, dict(mapping))


def _substitute(term: Term, mapping: dict[str, Term]) -> Term:
    if not mapping:
        return term
    if isinstance(term, Constant):
        return term
    if isinstance(term, Symbol):
        return mapping.get(term.name, term)
    if isinstance(term, Apply):
        # Plain loop, not a genexpr, so deep chains substitute in linear time.
        rewritten = []
        for arg in term.args:
            rewritten.append(_substitute(arg, mapping))
        new_args = tuple(rewritten)
        if new_args == term.args:
            return term
        return Apply(term.op, new_args, term.sort, term.indices)
    if isinstance(term, Quantifier):
        shadowed = {k: v for k, v in mapping.items() if k not in {n for n, _ in term.bindings}}
        new_body = _substitute(term.body, shadowed)
        if new_body is term.body:
            return term
        return Quantifier(term.kind, term.bindings, new_body)
    if isinstance(term, Let):
        new_bindings = tuple((name, _substitute(value, mapping)) for name, value in term.bindings)
        shadowed = {k: v for k, v in mapping.items() if k not in {n for n, _ in term.bindings}}
        new_body = _substitute(term.body, shadowed)
        return Let(new_bindings, new_body)
    raise TypeError(f"unknown term node: {term!r}")


def negate(term: Term) -> Term:
    """Logical negation of a ``Bool`` term, without stacking ``not`` nodes.

    ``true``/``false`` flip, ``(not t)`` unwraps to ``t``, and anything else
    gains a single ``not``.  The NNF and CNF layers use this so negative
    polarity never produces double negation.
    """
    if term is TRUE:
        return FALSE
    if term is FALSE:
        return TRUE
    if isinstance(term, Apply) and term.op == "not":
        return term.args[0]
    return Apply("not", (term,), BOOL)


def replace_subterm(term: Term, target: Term, replacement: Term) -> Term:
    """Return ``term`` with the first occurrence of ``target`` (by identity —
    which, with interning, *is* structural equality) replaced by
    ``replacement``.

    Structure-sharing: any node whose descendants are all unchanged is
    returned as-is (``is``-identical), so untouched siblings of the replaced
    occurrence never get rebuilt.
    """
    replaced = [False]

    def rewrite(node: Term) -> Term:
        if not replaced[0] and (node is target or node == target):
            replaced[0] = True
            return replacement
        if isinstance(node, Apply):
            new_args = tuple(rewrite(a) for a in node.args)
            if all(new is old for new, old in zip(new_args, node.args)):
                return node
            return Apply(node.op, new_args, node.sort, node.indices)
        if isinstance(node, Quantifier):
            new_body = rewrite(node.body)
            if new_body is node.body:
                return node
            return Quantifier(node.kind, node.bindings, new_body)
        if isinstance(node, Let):
            new_bindings = tuple((n, rewrite(v)) for n, v in node.bindings)
            new_body = rewrite(node.body)
            if new_body is node.body and all(
                new is old for (_, new), (_, old) in zip(new_bindings, node.bindings)
            ):
                return node
            return Let(new_bindings, new_body)
        return node

    return rewrite(term)


# ---------------------------------------------------------------------------
# Small constructors used pervasively in tests and generators.
# ---------------------------------------------------------------------------

TRUE = Constant(True, BOOL)
FALSE = Constant(False, BOOL)


def int_const(value: int) -> Constant:
    """An ``Int`` numeral."""
    return Constant(int(value), INT)


def real_const(value: Union[int, float, Fraction]) -> Constant:
    """A ``Real`` decimal (stored exactly as a :class:`~fractions.Fraction`)."""
    return Constant(Fraction(value).limit_denominator(10**9), REAL)


def string_const(value: str) -> Constant:
    """A ``String`` literal."""
    return Constant(str(value), STRING)


def bool_const(value: bool) -> Constant:
    """``true`` or ``false``."""
    return TRUE if value else FALSE


def bitvec_const(value: int, width: int) -> Constant:
    """A bit-vector literal of the given width (value is reduced mod 2^width)."""
    from .sorts import bitvec_sort

    return Constant(int(value) % (1 << width), bitvec_sort(width))


def ff_const(value: int, order: int) -> Constant:
    """A finite-field literal ``(as ffK (_ FiniteField order))``."""
    from .sorts import finite_field_sort

    reduced = int(value) % order
    return Constant(reduced, finite_field_sort(order), qualifier=f"ff{reduced}")


def qualified_constant(name: str, sort: Sort) -> Constant:
    """A qualified nullary constructor such as ``(as seq.empty (Seq Int))``."""
    return Constant(0, sort, qualifier=name)


def symbols(names: Sequence[str], sort: Sort) -> list[Symbol]:
    """Declare a batch of same-sorted symbols (convenience for tests)."""
    return [Symbol(name, sort) for name in names]


__all__ = [
    "Term",
    "Constant",
    "Symbol",
    "Apply",
    "Quantifier",
    "Let",
    "substitute",
    "negate",
    "replace_subterm",
    "intern_stats",
    "reset_intern_stats",
    "TRUE",
    "FALSE",
    "int_const",
    "real_const",
    "string_const",
    "bool_const",
    "bitvec_const",
    "ff_const",
    "qualified_constant",
    "symbols",
    "ConstantValue",
]
