"""Exception hierarchy shared across the reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can distinguish library failures from programming mistakes.  The
solver substrate additionally distinguishes *solver-internal* failures
(crashes that the fuzzing oracle must classify as bugs) from *input* failures
(parse and type errors that merely mean the generated formula was invalid).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SmtLibError(ReproError):
    """Base class for errors in the SMT-LIB front end."""


class LexerError(SmtLibError):
    """Raised when the input text cannot be tokenised."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SmtLibError):
    """Raised when a token stream is not a well-formed SMT-LIB script."""


class PrinterError(SmtLibError):
    """Raised when a term or script cannot be rendered as SMT-LIB text."""


class SortError(SmtLibError):
    """Raised when a term is ill-sorted (type error in SMT-LIB terminology)."""


class TypeCheckError(SortError):
    """Raised by the well-sortedness pass in :mod:`repro.smtlib.typecheck`.

    A subclass of :class:`SortError` so existing ``except SortError`` call
    sites keep working; the distinct name lets oracles report whether the
    failure came from the dedicated checker or from ad-hoc sort plumbing.
    """


class EvaluationError(SmtLibError):
    """Raised by :mod:`repro.smtlib.evaluate` when a term cannot be reduced
    to a literal value: it has free symbols not covered by the environment,
    contains a quantifier, or applies an operator whose result SMT-LIB
    leaves unspecified on the given literals (e.g. division by zero)."""


class UnknownSymbolError(SmtLibError):
    """Raised when a term references an undeclared symbol."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown symbol: {name}")
        self.name = name


class SolverError(ReproError):
    """Base class for errors originating in the solver substrate."""


class SolverInternalError(SolverError):
    """An *internal* solver failure: assertion violation or segfault analogue.

    These are exactly the failures the fuzzing oracle classifies as crash
    bugs.  ``site`` identifies the internal code location that failed and is
    used by crash de-duplication (crashes with the same site are one bug).
    """

    def __init__(self, message: str, site: str) -> None:
        super().__init__(message)
        self.site = site


class SolverTimeoutError(SolverError):
    """The solver exceeded its per-query budget."""


class UnsupportedLogicError(SolverError):
    """The formula uses a feature the solver does not implement."""


class GeneratorError(ReproError):
    """Raised when a synthesized term generator cannot be loaded or executed."""


class LlmError(ReproError):
    """Raised when an LLM backend cannot service a request."""


class ReductionError(ReproError):
    """Raised when delta reduction is asked to reduce a non-failing input."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""
